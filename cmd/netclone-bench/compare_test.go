package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Doctored-snapshot coverage for the regression ratchet: the acceptance
// bar is that compare exits non-zero on a synthetic >5% events/sec loss
// or any hot-path allocs/op growth, warns (not fails) across hosts, and
// reads schema-1 baselines.

func goodSnapshot() benchFile {
	return benchFile{
		Schema:  4,
		Backend: "sim",
		Host:    &benchHost{GOOS: "linux", GOARCH: "amd64", NumCPU: 8, CPUModel: "testcpu"},
		HotPath: &benchHotPath{Runs: 100, EventsPerSec: 10e6, NSPerOp: 1e6, AllocsPerOp: 104.2},
		HotSharded: &benchHotPathSharded{
			Points: []benchShardPoint{
				{Shards: 1, Runs: 20, EventsPerSec: 9e6},
				{Shards: 2, Runs: 20, EventsPerSec: 16e6},
				{Shards: 4, Runs: 20, EventsPerSec: 27e6},
				{Shards: 8, Runs: 20, EventsPerSec: 34e6},
			},
			Speedup: 34.0 / 9.0,
		},
		EmuLoopback: &benchEmuLoopback{
			Portable: &benchEmuRate{SustainedRPS: 60e3, Rungs: []benchEmuRung{
				{OfferedRPS: 4e3, AchievedRPS: 4e3, CompletedFrac: 0.999},
				{OfferedRPS: 64e3, AchievedRPS: 60e3, CompletedFrac: 0.98},
			}},
			Batched: &benchEmuRate{SustainedRPS: 72e3, Rungs: []benchEmuRung{
				{OfferedRPS: 4e3, AchievedRPS: 4e3, CompletedFrac: 0.999},
				{OfferedRPS: 64e3, AchievedRPS: 72e3, CompletedFrac: 0.99},
			}},
			Speedup: 1.2,
		},
		Runs: []benchExperiment{
			{ID: "fig7a", Gated: true, Points: 9, Events: 6e6, EventsPerSec: 6e6},
			{ID: "table1", Gated: false, Points: 0, Events: 0},
		},
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	r := compareBench(goodSnapshot(), goodSnapshot())
	if len(r.failures) != 0 || len(r.warnings) != 0 {
		t.Fatalf("identical snapshots produced failures %v warnings %v", r.failures, r.warnings)
	}
}

func TestCompareSmallLossWithinTolerancePasses(t *testing.T) {
	cand := goodSnapshot()
	cand.HotPath.EventsPerSec *= 0.96 // -4%: inside the 5% tolerance
	r := compareBench(goodSnapshot(), cand)
	if len(r.failures) != 0 {
		t.Fatalf("4%% loss failed the gate: %v", r.failures)
	}
}

func TestCompareEventsRegressionFails(t *testing.T) {
	cand := goodSnapshot()
	cand.HotPath.EventsPerSec *= 0.90 // -10%: past the 5% tolerance
	r := compareBench(goodSnapshot(), cand)
	if len(r.failures) != 1 || !strings.Contains(r.failures[0], "events/sec regressed") {
		t.Fatalf("10%% loss not gated: %v", r.failures)
	}
}

func TestCompareAllocGrowthFails(t *testing.T) {
	cand := goodSnapshot()
	cand.HotPath.AllocsPerOp += 1 // one real extra allocation per op
	r := compareBench(goodSnapshot(), cand)
	if len(r.failures) != 1 || !strings.Contains(r.failures[0], "allocs/op grew") {
		t.Fatalf("alloc growth not gated: %v", r.failures)
	}
	// Sub-allocation jitter from the process-wide counter must pass.
	cand = goodSnapshot()
	cand.HotPath.AllocsPerOp += 0.3
	if r := compareBench(goodSnapshot(), cand); len(r.failures) != 0 {
		t.Fatalf("0.3 allocs/op jitter failed the gate: %v", r.failures)
	}
}

func TestCompareCrossHostWarnsInsteadOfFails(t *testing.T) {
	cand := goodSnapshot()
	cand.Host.CPUModel = "othercpu"
	cand.HotPath.EventsPerSec *= 0.5 // a huge loss, but on different hardware
	r := compareBench(goodSnapshot(), cand)
	if len(r.failures) != 0 {
		t.Fatalf("cross-host diff failed instead of warning: %v", r.failures)
	}
	joined := strings.Join(r.warnings, "\n")
	if !strings.Contains(joined, "different hosts") || !strings.Contains(joined, "events/sec regressed") {
		t.Fatalf("cross-host warnings missing: %v", r.warnings)
	}
}

func TestCompareSchema1BaselineTreatedAsDifferentHost(t *testing.T) {
	base := goodSnapshot()
	base.Schema = 1
	base.Host = nil // schema-1 files carry no host metadata
	cand := goodSnapshot()
	cand.HotPath.EventsPerSec *= 0.5
	r := compareBench(base, cand)
	if len(r.failures) != 0 {
		t.Fatalf("schema-1 baseline (unknown host) failed instead of warning: %v", r.failures)
	}
}

func TestCompareUngatedExperimentsSkipped(t *testing.T) {
	cand := goodSnapshot()
	r := compareBench(goodSnapshot(), cand)
	joined := strings.Join(r.lines, "\n")
	if !strings.Contains(joined, "table1") || !strings.Contains(joined, "ungated") {
		t.Fatalf("ungated experiment not named in report: %v", r.lines)
	}
}

func TestCompareExperimentRegressionOnlyWarns(t *testing.T) {
	cand := goodSnapshot()
	cand.Runs[0].EventsPerSec *= 0.8
	r := compareBench(goodSnapshot(), cand)
	if len(r.failures) != 0 {
		t.Fatalf("experiment delta gated (should be report-only): %v", r.failures)
	}
	if !strings.Contains(strings.Join(r.warnings, "\n"), "fig7a") {
		t.Fatalf("experiment regression not warned: %v", r.warnings)
	}
}

// The sharded-probe gate: the highest-shard-count throughput ratchets
// exactly like the sequential hot path, and the absolute speedup floor
// binds only on hosts with enough cores to show a speedup.

func TestCompareShardedRegressionFails(t *testing.T) {
	cand := goodSnapshot()
	cand.HotSharded.Points[3].EventsPerSec *= 0.90 // -10% at 8 shards
	r := compareBench(goodSnapshot(), cand)
	if len(r.failures) != 1 || !strings.Contains(r.failures[0], "hot_path_sharded events/sec regressed") {
		t.Fatalf("sharded throughput regression not gated: %v", r.failures)
	}
}

func TestCompareShardedSpeedupFloorOnBigHost(t *testing.T) {
	cand := goodSnapshot()
	cand.HotSharded.Speedup = 1.4 // the parallel core stopped scaling
	r := compareBench(goodSnapshot(), cand)
	if len(r.failures) != 1 || !strings.Contains(r.failures[0], "below the 3.0x floor") {
		t.Fatalf("speedup collapse on an 8-CPU host not gated: %v", r.failures)
	}
}

func TestCompareShardedSpeedupNotEnforcedOnSmallHost(t *testing.T) {
	base, cand := goodSnapshot(), goodSnapshot()
	for _, bf := range []*benchFile{&base, &cand} {
		bf.Host.NumCPU = 1
		bf.HotSharded.Speedup = 0.97 // serial time-slicing: no speedup to show
		for i := range bf.HotSharded.Points {
			bf.HotSharded.Points[i].EventsPerSec = 9e6
		}
	}
	r := compareBench(base, cand)
	if len(r.failures) != 0 || len(r.warnings) != 0 {
		t.Fatalf("1-CPU host hit the speedup floor: failures %v warnings %v", r.failures, r.warnings)
	}
	if !strings.Contains(strings.Join(r.lines, "\n"), "floor (3.0x) not enforced") {
		t.Fatalf("unenforced floor not reported: %v", r.lines)
	}
}

func TestCompareSchema2BaselineSkipsShardedGate(t *testing.T) {
	base := goodSnapshot()
	base.Schema = 2
	base.HotSharded = nil // predates the probe
	r := compareBench(base, goodSnapshot())
	if len(r.failures) != 0 {
		t.Fatalf("schema-2 baseline failed the sharded gate: %v", r.failures)
	}
	if !strings.Contains(strings.Join(r.warnings, "\n"), "no hot_path_sharded probe") {
		t.Fatalf("skipped sharded gate not warned: %v", r.warnings)
	}
}

// The emu-loopback gate: the batched sustained request rate ratchets
// like the hot path, the absolute 10x-over-pre-batching floor binds
// wherever the batch path is compiled in, and older baselines or
// portable-only hosts degrade to warnings and skipped floors.

func TestCompareEmuBatchedRegressionFails(t *testing.T) {
	base, cand := goodSnapshot(), goodSnapshot()
	base.EmuLoopback.Batched.SustainedRPS = 150e3
	cand.EmuLoopback.Batched.SustainedRPS = 60e3 // -60%: past a full 2x ladder rung, still above the floor
	r := compareBench(base, cand)
	if len(r.failures) != 1 || !strings.Contains(r.failures[0], "emu_loopback batched sustained rate regressed") {
		t.Fatalf("emu batched regression not gated: %v", r.failures)
	}
}

func TestCompareEmuOneRungDropPasses(t *testing.T) {
	// The probe's ladder quantizes sustained rate in 2x rungs, so a
	// healthy host oscillates between adjacent rungs across runs; a
	// one-rung drop is noise, not a regression, as long as the floor
	// holds.
	base, cand := goodSnapshot(), goodSnapshot()
	base.EmuLoopback.Batched.SustainedRPS = 120e3
	cand.EmuLoopback.Batched.SustainedRPS = 60e3 // one rung down, above the floor
	r := compareBench(base, cand)
	if len(r.failures) != 0 {
		t.Fatalf("one-rung drop gated: %v", r.failures)
	}
}

func TestCompareEmuSustainedFloorFails(t *testing.T) {
	base, cand := goodSnapshot(), goodSnapshot()
	// Both snapshots sustain only 39k: the ratchet passes, the absolute
	// floor — 10x the pre-batching 4k operating rate — does not.
	base.EmuLoopback.Batched.SustainedRPS = 39e3
	cand.EmuLoopback.Batched.SustainedRPS = 39e3
	r := compareBench(base, cand)
	if len(r.failures) != 1 || !strings.Contains(r.failures[0], "below the 40k floor") {
		t.Fatalf("sustained-rate floor not gated: %v", r.failures)
	}
}

func TestCompareEmuPortableOnlyHostSkipsFloor(t *testing.T) {
	base, cand := goodSnapshot(), goodSnapshot()
	for _, bf := range []*benchFile{&base, &cand} {
		bf.EmuLoopback.Batched = nil // non-Linux build: no rings compiled in
		bf.EmuLoopback.Speedup = 0
		bf.EmuLoopback.Portable.SustainedRPS = 20e3 // under the floor, but not gated
	}
	r := compareBench(base, cand)
	if len(r.failures) != 0 || len(r.warnings) != 0 {
		t.Fatalf("portable-only host gated: failures %v warnings %v", r.failures, r.warnings)
	}
	if !strings.Contains(strings.Join(r.lines, "\n"), "floor (40k rps) not enforced") {
		t.Fatalf("unenforced floor not reported: %v", r.lines)
	}
}

func TestCompareSchema3BaselineSkipsEmuGate(t *testing.T) {
	base := goodSnapshot()
	base.Schema = 3
	base.EmuLoopback = nil // predates the probe
	r := compareBench(base, goodSnapshot())
	if len(r.failures) != 0 {
		t.Fatalf("schema-3 baseline failed the emu gate: %v", r.failures)
	}
	if !strings.Contains(strings.Join(r.warnings, "\n"), "no emu_loopback probe") {
		t.Fatalf("skipped emu gate not warned: %v", r.warnings)
	}
}

// TestRunCompareEndToEnd exercises the file-loading path, schema-1
// upgrade, and report-only mode against doctored snapshots on disk.
func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, bf benchFile) string {
		p := filepath.Join(dir, name)
		if err := writeBenchJSON(p, bf); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", goodSnapshot())
	bad := goodSnapshot()
	bad.HotPath.EventsPerSec *= 0.8
	cand := write("cand.json", bad)

	var out strings.Builder
	failed, err := runCompare(&out, base, cand, false)
	if err != nil || !failed {
		t.Fatalf("doctored regression: failed=%v err=%v\n%s", failed, err, out.String())
	}
	out.Reset()
	failed, err = runCompare(&out, base, cand, true)
	if err != nil || failed {
		t.Fatalf("report-only still gated: failed=%v err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "report-only") {
		t.Fatalf("report-only verdict missing:\n%s", out.String())
	}
}

// TestReadBenchJSONSchema1Gating upgrades a committed-style schema-1
// file: gating must be inferred from the recorded counters.
func TestReadBenchJSONSchema1Gating(t *testing.T) {
	p := filepath.Join(t.TempDir(), "v1.json")
	v1 := `{"schema":1,"backend":"sim","experiments":[
		{"id":"table1","wall_ns":6228,"points":0,"events":0},
		{"id":"fig7a","wall_ns":1,"points":9,"events":100,"events_per_sec":1}]}`
	if err := os.WriteFile(p, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	bf, err := readBenchJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Runs[0].Gated || !bf.Runs[1].Gated {
		t.Fatalf("schema-1 gating wrong: table1=%v fig7a=%v", bf.Runs[0].Gated, bf.Runs[1].Gated)
	}
}
