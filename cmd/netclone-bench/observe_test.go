package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"netclone"
)

// obsResult builds a minimal observed point.
func obsResult(events int64, info netclone.ShardInfo, trace *netclone.TraceData) netclone.ScenarioResult {
	var res netclone.ScenarioResult
	res.EngineEvents = events
	res.ShardInfo = info
	res.Trace = trace
	return res
}

func TestRunObserverSummarySharded(t *testing.T) {
	o := &runObserver{experiment: "demo"}
	o.observe("p1", obsResult(2_000_000, netclone.ShardInfo{
		Requested: 4, Effective: 4, ShardEvents: []int64{500, 500, 500, 500},
	}, nil))
	o.observe("p2", obsResult(1_500_000, netclone.ShardInfo{
		Requested: 4, Effective: 1, Fallback: "the topology has fewer than two racks",
		ShardEvents: []int64{2000},
	}, nil))
	s := o.summary()
	for _, want := range []string{"3.5M engine events", "4 shards", "4.00x span speedup", "1/2 points sequential"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	var buf bytes.Buffer
	o.logFallbacks(&buf)
	want := "netclone-bench: demo: 1 point(s) ran on the sequential engine: the topology has fewer than two racks\n"
	if buf.String() != want {
		t.Errorf("fallback log = %q, want %q", buf.String(), want)
	}
}

func TestRunObserverSummaryUnsharded(t *testing.T) {
	o := &runObserver{experiment: "demo"}
	o.observe("p1", obsResult(900, netclone.ShardInfo{Requested: 1, Effective: 1, ShardEvents: []int64{900}}, nil))
	if s := o.summary(); s != "900 engine events" {
		t.Errorf("summary = %q; an unsharded run reports only events", s)
	}
	var buf bytes.Buffer
	o.logFallbacks(&buf)
	if buf.String() != "" {
		t.Errorf("unsharded run logged fallbacks: %q", buf.String())
	}
	if o.bestTrace() != nil {
		t.Error("untraced run captured a trace")
	}
}

func TestRunObserverKeepsRichestTrace(t *testing.T) {
	mk := func(n int) *netclone.TraceData {
		return &netclone.TraceData{Events: make([]netclone.TraceEvent, n)}
	}
	o := &runObserver{experiment: "demo"}
	o.observe("small", obsResult(1, netclone.ShardInfo{}, mk(3)))
	o.observe("big", obsResult(1, netclone.ShardInfo{}, mk(9)))
	o.observe("tie-later", obsResult(1, netclone.ShardInfo{}, mk(9)))
	best := o.bestTrace()
	if best == nil || best.label != "big" || len(best.data.Events) != 9 {
		t.Fatalf("best trace = %+v, want the first 9-event capture", best)
	}
	// Ties break toward the lexicographically first label.
	o.observe("aaa", obsResult(1, netclone.ShardInfo{}, mk(9)))
	if got := o.bestTrace().label; got != "aaa" {
		t.Errorf("tie-break picked %q, want lexicographic order", got)
	}
}

func TestFmtEvents(t *testing.T) {
	cases := map[int64]string{
		7:             "7",
		1_234:         "1.2k",
		3_300_000:     "3.3M",
		2_500_000_000: "2.5B",
	}
	for n, want := range cases {
		if got := fmtEvents(n); got != want {
			t.Errorf("fmtEvents(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestWriteTraceFileFormats(t *testing.T) {
	d := &netclone.TraceData{Rate: 1, Events: []netclone.TraceEvent{
		{At: 5, Client: 1, Seq: 2, Value: -1, Port: -1, Kind: 1},
	}}
	dir := t.TempDir()

	jsonPath := dir + "/t.json"
	if err := writeTraceFile(jsonPath, d); err != nil {
		t.Fatal(err)
	}
	j, _ := os.ReadFile(jsonPath)
	if !bytes.Contains(j, []byte("traceEvents")) {
		t.Errorf("json export missing traceEvents: %q", j)
	}

	csvPath := dir + "/t.csv"
	if err := writeTraceFile(csvPath, d); err != nil {
		t.Fatal(err)
	}
	c, _ := os.ReadFile(csvPath)
	if !bytes.HasPrefix(c, []byte("at_ns,kind,")) {
		t.Errorf("csv export missing header: %q", c)
	}
}
