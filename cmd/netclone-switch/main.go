// Command netclone-switch runs the NetClone ToR switch emulator over UDP:
// the in-switch request cloning, response filtering, and state tracking
// of the paper, applied to real datagrams. It is the distributed
// (multi-process) counterpart of the in-process netclone.Emu() backend
// and shares its scheme-to-dataplane mapping, so `-scheme` here selects
// exactly the switch program the Emu backend would run.
//
// Workers are registered statically:
//
//	netclone-switch -listen 127.0.0.1:9000 -scheme netclone \
//	    -server 0=127.0.0.1:9101 -server 1=127.0.0.1:9102
//
// Pair it with netclone-server and netclone-client.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"netclone/internal/dataplane"
	"netclone/internal/scenario"
	"netclone/internal/simcluster"
	"netclone/internal/udpemu"
)

// serverFlags collects repeated -server sid=host:port flags.
type serverFlags map[uint16]string

func (f serverFlags) String() string { return fmt.Sprint(map[uint16]string(f)) }

func (f serverFlags) Set(v string) error {
	sid, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want sid=host:port, got %q", v)
	}
	id, err := strconv.ParseUint(sid, 10, 16)
	if err != nil {
		return fmt.Errorf("bad server ID %q: %w", sid, err)
	}
	f[uint16(id)] = addr
	return nil
}

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:9000", "switch UDP listen address")
		schemeName   = flag.String("scheme", "", "switch program by scheme: baseline, cclone, netclone, netclone-nofilter, netclone-racksched (overrides the -no-*/-racksched flags)")
		filterTables = flag.Int("filter-tables", 2, "number of response filter tables")
		filterSlots  = flag.Int("filter-slots", 1<<17, "hash slots per filter table (power of two)")
		maxServers   = flag.Int("max-servers", 64, "server ID space (table capacity)")
		switchID     = flag.Uint("switch-id", 0, "multi-rack switch ID (0 = single rack)")
		noCloning    = flag.Bool("no-cloning", false, "disable request cloning (plain forwarding)")
		noFiltering  = flag.Bool("no-filtering", false, "disable response filtering (Fig 15 ablation)")
		racksched    = flag.Bool("racksched", false, "enable the RackSched JSQ fallback (§3.7)")
		ioFlag       = flag.String("io", "auto", "syscall discipline: auto (recvmmsg/sendmmsg bursts where supported), portable (one syscall per packet), batch (require the burst path)")
	)
	servers := serverFlags{}
	flag.Var(servers, "server", "worker registration sid=host:port (repeatable)")
	flag.Parse()

	// -scheme routes through the same mapping the in-process Emu backend
	// uses; the legacy -no-cloning/-no-filtering/-racksched flags remain
	// independent toggles for scripts that predate it.
	var cfg dataplane.Config
	if *schemeName != "" {
		scheme, err := parseScheme(*schemeName)
		if err != nil {
			fatal(err)
		}
		if cfg, err = scenario.SwitchConfig(scheme, *filterTables, *filterSlots, *maxServers); err != nil {
			fatal(err)
		}
	} else {
		cfg = dataplane.Config{
			MaxServers:      *maxServers,
			FilterTables:    *filterTables,
			FilterSlots:     *filterSlots,
			EnableCloning:   !*noCloning,
			EnableFiltering: !*noFiltering,
			RackSched:       *racksched,
		}
	}
	cfg.SwitchID = uint16(*switchID)
	ioMode, err := udpemu.ParseIOMode(*ioFlag)
	if err != nil {
		fatal(err)
	}
	sw, err := udpemu.NewSwitch(*listen, cfg, ioMode)
	if err != nil {
		fatal(err)
	}
	for sid, addr := range servers {
		udpAddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			fatal(fmt.Errorf("server %d: %w", sid, err))
		}
		if err := sw.AddServer(sid, udpAddr); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("netclone-switch listening on %s (%d servers, %d groups, cloning=%v filtering=%v racksched=%v, io=%s batched=%v)\n",
		sw.Addr(), len(servers), sw.NumGroups(), cfg.EnableCloning, cfg.EnableFiltering, cfg.RackSched, ioMode, sw.Batched())

	done := make(chan error, 1)
	go func() { done <- sw.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	sw.Close()
	st := sw.Stats()
	fmt.Printf("requests=%d cloned=%d recirculated=%d responses=%d filtered=%d\n",
		st.Requests, st.Cloned, st.Recirculated, st.Responses, st.FilterDrops)
}

// parseScheme resolves the -scheme mnemonic to a Scheme with an
// emulated switch role.
func parseScheme(name string) (simcluster.Scheme, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return simcluster.Baseline, nil
	case "cclone", "c-clone":
		return simcluster.CClone, nil
	case "netclone":
		return simcluster.NetClone, nil
	case "netclone-nofilter", "nofilter":
		return simcluster.NetCloneNoFilter, nil
	case "netclone-racksched", "racksched":
		return simcluster.NetCloneRackSched, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want baseline, cclone, netclone, netclone-nofilter, or netclone-racksched)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netclone-switch:", err)
	os.Exit(1)
}
