#!/usr/bin/env bash
# scripts/bench.sh — the tracked benchmark pipeline (README § Benchmarking).
#
# Runs the alloc-reporting micro-benchmarks (engine, switch pipeline,
# samplers, per-figure experiment benchmarks), then meters the full
# experiment suite through netclone-bench -benchjson and writes the next
# BENCH_<n>.json in the repository root. Committing that file is how the
# perf trajectory is recorded — and `compare` is how it is enforced: a
# fresh throwaway snapshot is diffed against the latest committed
# BENCH_<n>.json, failing on >5% hot-path events/sec loss (sequential
# probe and 8-shard parallel-in-time probe alike), any hot-path
# allocs/op growth, or — on hosts with >= 8 CPUs — a sharded speedup
# below 3x (warnings only when the snapshots come from different
# hosts).
#
# Every snapshot also carries the emu loopback rate probe: the
# sustained request rate a real 2-server loopback NetClone cluster
# holds under an open-loop rate ladder, measured on the portable
# one-syscall-per-packet path and (where compiled in) the batched
# recvmmsg/sendmmsg path. compare holds the batched rate above the
# 40k req/s floor — ten times the 4k req/s the single-syscall backend
# operated at — and fails a regression of more than one of the
# ladder's 2x rungs (the probe quantizes in rungs, so a tighter
# ratchet would flake on every rung boundary).
#
# Usage:
#   scripts/bench.sh               # micro-benchmarks + BENCH_<n>.json
#   scripts/bench.sh micro         # micro-benchmarks only
#   scripts/bench.sh snapshot      # BENCH_<n>.json only
#   scripts/bench.sh compare       # regression gate vs latest BENCH_<n>.json
#
# Environment knobs:
#   BENCH=<regex>      micro-benchmark filter        (default: the hot-path set)
#   BENCHTIME=<t>      go test -benchtime            (default: 1s)
#   EXPERIMENTS=<ids>  netclone-bench -run argument  (default: all;
#                      compare defaults to fig7a — the gate is the
#                      hot-path probe, experiments are context)
#   PARALLEL=<n>       snapshot parallelism; 1 gives attributable
#                      per-point allocation counts   (default: 1)
#   REPORT_ONLY=1      compare: print regressions but exit 0 (CI uses
#                      this on pull requests, enforcing on main)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
# ClusterSteadyState also matches ClusterSteadyStateFaulted (the
# fault-path micro-benchmark, 0 allocs/op with active fault windows),
# ClusterSteadyStateMultiRack (the N-rack fabric path, 0 allocs/op
# across three racks of heterogeneous uplinks),
# ClusterSteadyStateCongested (the finite-queue path, 0 allocs/op with
# a congested three-rack fabric), ClusterSteadyStateSharded (the
# parallel-in-time window driver over a 4-shard fabric, 0 allocs/op in
# steady state, driven serially so the figure is core-count-portable),
# and ClusterSteadyStateTraced (the flight recorder sampling every 64th
# request on the fabric path — Record writes into a preallocated ring,
# so it must hold the same 0 allocs/op).
bench_re="${BENCH:-Engine|SwitchPipeline|ClusterSteadyState|SwitchProcess|SimulatedMillisecond|ZipfRank|KVMixNext|PoissonGap|SummarizeFrozen}"
benchtime="${BENCHTIME:-1s}"
experiments="${EXPERIMENTS:-all}"
parallel="${PARALLEL:-1}"

# latest_snapshot prints the highest-numbered committed BENCH_<n>.json,
# or nothing when none exist. Numeric sort handles gaps and multi-digit
# n; the trailing || true keeps `set -euo pipefail` from aborting the
# caller when the glob matches nothing (compare prints its own error).
latest_snapshot() {
    ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -n 1 || true
}

if [ "$mode" = "all" ] || [ "$mode" = "micro" ]; then
    echo "== micro-benchmarks (-bench '$bench_re' -benchtime $benchtime)" >&2
    go test -run '^$' -bench "$bench_re" -benchmem -benchtime "$benchtime" ./...
fi

if [ "$mode" = "all" ] || [ "$mode" = "snapshot" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
    echo "== experiment snapshot -> $out (-run $experiments -quick -parallel $parallel)" >&2
    go run ./cmd/netclone-bench -run "$experiments" -quick -parallel "$parallel" \
        -benchjson "$out" >/dev/null
    echo "wrote $out" >&2
fi

if [ "$mode" = "compare" ]; then
    baseline="$(latest_snapshot)"
    if [ -z "$baseline" ]; then
        echo "bench.sh compare: no committed BENCH_<n>.json baseline" >&2
        exit 1
    fi
    # The gate is the sequential hot-path probe; a single quick
    # experiment keeps the fresh snapshot cheap enough for CI while
    # still exercising the metered pipeline end to end.
    cmp_experiments="${EXPERIMENTS:-fig7a}"
    fresh="$(mktemp -t netclone-bench-XXXXXX.json)"
    trap 'rm -f "$fresh"' EXIT
    echo "== fresh snapshot -> $fresh (-run $cmp_experiments -quick -parallel 1)" >&2
    go run ./cmd/netclone-bench -run "$cmp_experiments" -quick -parallel 1 \
        -benchjson "$fresh" >/dev/null
    report_flag=""
    [ "${REPORT_ONLY:-0}" = "1" ] && report_flag="-report-only"
    echo "== compare vs $baseline" >&2
    go run ./cmd/netclone-bench -compare "$fresh" -baseline "$baseline" $report_flag
fi
