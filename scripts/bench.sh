#!/usr/bin/env bash
# scripts/bench.sh — the tracked benchmark pipeline (README § Benchmarking).
#
# Runs the alloc-reporting micro-benchmarks (engine, switch pipeline,
# samplers, per-figure experiment benchmarks), then meters the full
# experiment suite through netclone-bench -benchjson and writes the next
# BENCH_<n>.json in the repository root. Committing that file is how the
# perf trajectory is recorded; diff consecutive snapshots (or feed the
# `go test -bench` output to benchstat) to catch regressions.
#
# Usage:
#   scripts/bench.sh               # micro-benchmarks + BENCH_<n>.json
#   scripts/bench.sh micro         # micro-benchmarks only
#   scripts/bench.sh snapshot      # BENCH_<n>.json only
#
# Environment knobs:
#   BENCH=<regex>      micro-benchmark filter        (default: the hot-path set)
#   BENCHTIME=<t>      go test -benchtime            (default: 1s)
#   EXPERIMENTS=<ids>  netclone-bench -run argument  (default: all)
#   PARALLEL=<n>       snapshot parallelism; 1 gives attributable
#                      per-point allocation counts   (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
# ClusterSteadyState also matches ClusterSteadyStateFaulted (the
# fault-path micro-benchmark, 0 allocs/op with active fault windows)
# and ClusterSteadyStateMultiRack (the N-rack fabric path, 0 allocs/op
# across three racks of heterogeneous uplinks).
bench_re="${BENCH:-Engine|SwitchPipeline|ClusterSteadyState|SwitchProcess|SimulatedMillisecond|ZipfRank|KVMixNext|PoissonGap|SummarizeFrozen}"
benchtime="${BENCHTIME:-1s}"
experiments="${EXPERIMENTS:-all}"
parallel="${PARALLEL:-1}"

if [ "$mode" = "all" ] || [ "$mode" = "micro" ]; then
    echo "== micro-benchmarks (-bench '$bench_re' -benchtime $benchtime)" >&2
    go test -run '^$' -bench "$bench_re" -benchmem -benchtime "$benchtime" ./...
fi

if [ "$mode" = "all" ] || [ "$mode" = "snapshot" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
    echo "== experiment snapshot -> $out (-run $experiments -quick -parallel $parallel)" >&2
    go run ./cmd/netclone-bench -run "$experiments" -quick -parallel "$parallel" \
        -benchjson "$out" >/dev/null
    echo "wrote $out" >&2
fi
