// One scenario, two backends: the NetClone data plane simulated and
// over real sockets.
//
// Declares a single key-value Scenario — three 4-thread servers, a
// read-mostly Zipf mix, a modest open-loop rate — and runs it unchanged
// on both execution backends:
//
//  1. Sim: the deterministic discrete-event simulator behind every
//     paper figure;
//
//  2. Emu: an in-process loopback cluster (switch emulator, UDP worker
//     servers, measuring clients) exercising the identical dataplane
//     pipeline and wire format over the kernel network stack.
//
// The unified result counters line up column for column, so the table
// shows the protocol behaving the same way in both executable models:
// most requests cloned, slower twins filtered in the switch, (almost) no
// redundant responses reaching the clients. Absolute latencies differ —
// loopback RTT and kernel scheduling noise dwarf the simulated
// microsecond effects — which is exactly why the paper figures come
// from Sim and the protocol proof from Emu.
//
//	go run ./examples/udpcluster [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): a short send window")
	flag.Parse()
	window := 2 * time.Second
	if *quick {
		window = 300 * time.Millisecond
	}

	sc := netclone.NewScenario(
		netclone.WithScheme(netclone.NetClone),
		netclone.WithTopology(4, 4, 4),
		netclone.WithClients(1),
		netclone.WithKVWorkload(netclone.NewKVMix(0.99, 0.01, 50_000, 0.99), netclone.RedisModel()),
		netclone.WithOfferedLoad(2000),
		netclone.WithWindow(0, window),
		netclone.WithSeed(7),
	)
	if err := sc.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("One scenario, two backends: 3x4-thread servers, read-mostly KV mix, 2000 req/s")
	fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s %10s\n",
		"backend", "completed", "tput(rps)", "p99", "cloned", "filtered", "cloneDrop", "redundant")

	for _, be := range []netclone.Backend{netclone.Sim(), netclone.Emu()} {
		res, err := be.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10d %10.0f %9.0fus %10d %10d %10d %10d\n",
			res.Backend, res.Completed, res.ThroughputRPS,
			float64(res.Latency.P99)/1e3,
			res.Switch.Cloned, res.Switch.FilterDrops,
			res.CloneDropsAtServer, res.RedundantAtClient)
	}

	fmt.Println()
	fmt.Println("Same wire format, same dataplane code, two substrates: the switch")
	fmt.Println("cloned idle-pair requests and filtered the slower responses in both")
	fmt.Println("models. Distributed deployments use the same pieces as separate")
	fmt.Println("processes: cmd/netclone-switch, -server, and -client.")
}
