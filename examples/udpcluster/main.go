// UDP cluster example: the NetClone data plane over real sockets.
//
// Starts an in-process loopback cluster — one switch emulator, three
// kvstore-backed worker servers, one client — and demonstrates:
//
//  1. cloning and response filtering on live UDP traffic,
//
//  2. the switch counters after a read-mostly workload,
//
//  3. server failure handling: removing a failed server from the
//     control plane and continuing without loss (§3.6).
//
//     go run ./examples/udpcluster
package main

import (
	"fmt"
	"log"
	"time"

	"netclone/internal/dataplane"
	"netclone/internal/kvstore"
	"netclone/internal/simnet"
	"netclone/internal/udpemu"
	"netclone/internal/workload"
)

func main() {
	// Switch with the prototype's data-plane configuration (scaled-down
	// filter tables; the slot count only affects collision rates).
	sw, err := udpemu.NewSwitch("127.0.0.1:0", dataplane.Config{
		MaxServers:      8,
		FilterTables:    2,
		FilterSlots:     1 << 12,
		EnableCloning:   true,
		EnableFiltering: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	go sw.Serve() //nolint:errcheck // stopped by Close
	defer sw.Close()
	fmt.Println("switch listening on", sw.Addr())

	// Three worker servers sharing one replicated store.
	store := kvstore.NewStore(100_000)
	var servers []*udpemu.Server
	for sid := uint16(0); sid < 3; sid++ {
		srv, err := udpemu.NewServer("127.0.0.1:0", sw.Addr(), udpemu.ServerConfig{
			SID: sid, Workers: 4, Store: store,
		})
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve() //nolint:errcheck
		defer srv.Close()
		if err := sw.AddServer(sid, srv.Addr()); err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		fmt.Printf("server %d on %s\n", sid, srv.Addr())
	}

	client, err := udpemu.NewClient(sw.Addr(), udpemu.ClientConfig{
		ClientID: 1, FilterTables: 2, Seed: 7, Timeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Phase 1: read-mostly workload across all three servers.
	mix := workload.NewKVMix(0.99, 0.01, 100_000, 0.99)
	rng := simnet.NewRNG(7, 1)
	const phase1 = 2000
	for i := 0; i < phase1; i++ {
		op, rank := mix.Next(rng)
		span := uint16(0)
		if op == workload.OpScan {
			span = workload.ScanSpan
		}
		if _, err := client.Do(sw.NumGroups(), op, rank, span, nil); err != nil {
			log.Fatalf("request %d: %v", i, err)
		}
	}
	st := sw.Stats()
	fmt.Printf("\nphase 1: %d requests completed over UDP\n", phase1)
	fmt.Printf("  latency: %s\n", client.Latency())
	fmt.Printf("  switch: cloned=%d recirculated=%d filtered=%d stateUpdates=%d\n",
		st.Cloned, st.Recirculated, st.FilterDrops, st.StateUpdates)
	fmt.Printf("  redundant responses at client: %d (filtering working)\n", client.Redundant())

	// Phase 2: kill server 2, remove it from the control plane, keep
	// going — the group table is rebuilt over the survivors (§3.6).
	fmt.Println("\nphase 2: failing server 2 and removing it from the switch")
	servers[2].Close()
	sw.RemoveServer(2)
	for i := 0; i < 500; i++ {
		if _, err := client.Do(sw.NumGroups(), workload.OpGet, uint64(i), 0, nil); err != nil {
			log.Fatalf("request after failover %d: %v", i, err)
		}
	}
	fmt.Printf("  500 more requests completed against the surviving pair\n")
	fmt.Printf("  final latency: %s\n", client.Latency())
}
