// Chaos example: a declarative fault plan and its recovery curve.
//
// Builds one fault plan against the paper's testbed — a straggling
// server ramping to 4x service times, then a decaying loss burst, then
// a full server crash — attaches it to a Scenario with WithFaults, and
// runs it on the simulator. The run reports the executed fault windows,
// the degraded-window tail (Result.Faults.Degraded), and the
// throughput-vs-time recovery curve, the same machinery behind the
// chaos-* experiments (netclone-bench -run 'chaos-*' -timeline out.csv).
//
//	go run ./examples/chaos [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): 10x shorter timeline")
	flag.Parse()
	unit := 20 * time.Millisecond // one timeline bin
	if *quick {
		unit = 2 * time.Millisecond
	}

	// The fault schedule, in timeline bins: a straggler across bins
	// 3..7, a decaying loss burst across 9..12, a server crash across
	// 14..17. The run spans 20 bins.
	plan := netclone.NewFaultPlan(
		netclone.FaultServerSlowdown(0, 3*unit, 7*unit, 4, unit),
		netclone.FaultLossRamp(9*unit, 12*unit, 0.5, 0.05),
		netclone.FaultServerCrash(1, 14*unit, 17*unit),
	)

	sc := netclone.NewScenario(
		netclone.WithScheme(netclone.NetClone),
		netclone.WithServers(6, 16),
		netclone.WithWorkload(netclone.WithJitter(netclone.Exp(25), 0.01)),
		netclone.WithOfferedLoad(1.5e6),
		netclone.WithWindow(0, 20*time.Duration(unit)),
		netclone.WithSeed(9),
		netclone.WithTimeline(unit),
		netclone.WithFaults(plan),
	)
	if err := sc.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := netclone.Sim().Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Chaos plan on the paper testbed: straggler -> loss burst -> server crash")
	fmt.Println()
	fmt.Println("Executed fault windows:")
	for _, w := range res.Faults.Windows {
		fmt.Printf("  %-16s target=%-2d [%5.0fms, %5.0fms)\n",
			w.Kind, w.Target, float64(w.FromNS)/1e6, float64(w.UntilNS)/1e6)
	}

	fmt.Println()
	fmt.Println("Throughput recovery curve (one bar = one bin):")
	rates := res.Timeline.Rate()
	peak := 0.0
	for _, r := range rates {
		if r > peak {
			peak = r
		}
	}
	for i, r := range rates[:min(len(rates), 20)] {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(40*r/peak))
		}
		fmt.Printf("  %5.0fms %8.2f MRPS %s\n", float64(i)*float64(unit)/float64(time.Millisecond), r/1e6, bar)
	}

	f := res.Faults
	fmt.Println()
	fmt.Printf("Degraded windows: %d completions, p99 %.1fus (whole run p99 %.1fus)\n",
		f.DegradedCompleted, float64(f.Degraded.P99)/1e3, float64(res.Latency.P99)/1e3)
	fmt.Printf("Dropped at down components: %d packets; lost to the burst: %d packets\n",
		f.DroppedPackets, res.LostPackets)
	fmt.Println()
	fmt.Println("The same plan vocabulary drives the chaos-* experiment family:")
	fmt.Println("  go run ./cmd/netclone-bench -run 'chaos-*' -quick -timeline recovery.csv")
}
