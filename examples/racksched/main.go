// RackSched integration example (§3.7, Fig 10).
//
// On a heterogeneous cluster (three 15-thread and three 8-thread
// servers), NetClone alone inherits the Baseline's random placement when
// servers are busy, so the slow servers build queues. With the RackSched
// integration the switch falls back to power-of-two-choices
// join-shortest-queue scheduling over the piggybacked queue lengths, and
// still clones whenever both candidates are idle. The heterogeneous
// topology is declared once with WithTopology and shared by every run.
//
//	go run ./examples/racksched [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): 10x shorter windows")
	flag.Parse()
	warmup, window := 50*time.Millisecond, 200*time.Millisecond
	if *quick {
		warmup, window = 5*time.Millisecond, 20*time.Millisecond
	}

	base := netclone.NewScenario(
		netclone.WithTopology(15, 15, 15, 8, 8, 8),
		netclone.WithWorkload(netclone.WithJitter(netclone.Exp(25), 0.01)),
		netclone.WithWindow(warmup, window),
		netclone.WithSeed(3),
	)

	fmt.Println("Heterogeneous cluster: 3x15 + 3x8 worker threads, Exp(25)")
	fmt.Printf("%-20s %12s %12s %10s %12s\n",
		"scheme", "offered(M)", "tput(M)", "p99(us)", "JSQ used")

	sim := netclone.Sim()
	for _, scheme := range []netclone.Scheme{
		netclone.Baseline, netclone.NetClone, netclone.NetCloneRackSched,
	} {
		for _, load := range []float64{0.6, 1.2, 1.8, 2.2} {
			res, err := sim.Run(base.With(
				netclone.WithScheme(scheme),
				netclone.WithOfferedLoad(load*1e6),
			))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-20s %12.1f %12.3f %10.1f %12d\n",
				scheme, load, res.ThroughputRPS/1e6,
				float64(res.Latency.P99)/1e3, res.Switch.JSQFallback)
		}
	}

	fmt.Println()
	fmt.Println("NetClone+RackSched keeps the cloning win at low load and adds JSQ's")
	fmt.Println("imbalance tolerance at high load — the synergy of paper Fig 10(b)/(d).")
}
