// Congestion example: finite link queues, incast, and reactive cloning.
//
// Attaches a congestion model to the paper's testbed — 2.5 Gbps edge
// links with 64-packet port queues and ECN marking — and drives the
// two client down-ports into incast overload. Runs the same scenario
// under fixed NetClone cloning and under near-source clone suppression
// (same seed, so the delta is the clone gate alone), then prints the
// executed model's drops, marks, queue depths, and the busiest ports —
// the machinery behind the cong-* experiments
// (netclone-bench -run 'cong-*' -quick -timeline out.csv).
//
//	go run ./examples/congestion [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): 10x shorter window")
	flag.Parse()
	window := 400 * time.Millisecond
	if *quick {
		window = 40 * time.Millisecond
	}

	// 2.5 Gbps edge links: the two client down-ports serialize ~208k
	// packets/s each, far below the offered load, so responses pile up
	// there and the queues mark, then drop.
	model := netclone.NewCongestion().WithLinkRate(2.5)

	base := netclone.NewScenario(
		netclone.WithServers(6, 16),
		netclone.WithWorkload(netclone.WithJitter(netclone.Exp(25), 0.01)),
		netclone.WithCongestion(model),
		netclone.WithOfferedLoad(1.2e6),
		netclone.WithWindow(50*time.Millisecond, window),
		netclone.WithSeed(7),
	)

	fmt.Println("Incast on a 2.5 Gbps edge: fixed cloning vs near-source suppression")
	fmt.Printf("(64-packet port queues, ECN threshold 16, %v window, same seed)\n\n",
		window)

	var results [2]netclone.ScenarioResult
	for i, scheme := range []netclone.Scheme{netclone.NetClone, netclone.NetCloneSuppress} {
		sc := base.With(netclone.WithScheme(scheme))
		if err := sc.Validate(); err != nil {
			log.Fatal(err)
		}
		res, err := netclone.Sim().Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		results[i] = res

		cong := res.Congestion
		fmt.Printf("%s:\n", scheme)
		fmt.Printf("  completed %d/%d, p99 %.1fus\n",
			res.Completed, res.Generated, float64(res.Latency.P99)/1e3)
		fmt.Printf("  tail-drops %d, ECN marks %d (%d seen end-to-end at clients), max depth %d\n",
			cong.Drops, cong.Marks, cong.MarkedAtClients, cong.MaxDepth)
		if cong.SuppressedClones > 0 {
			fmt.Printf("  clones suppressed at hot ports: %d\n", cong.SuppressedClones)
		}
		fmt.Println("  busiest ports (packets in system, time-weighted):")
		ports := cong.Ports
		for _, p := range ports {
			// The demo's hot spots: any port that ever filled half up.
			if p.MaxDepth < 32 {
				continue
			}
			fmt.Printf("    rack %d %-6s %2d  mean %5.1f  max %2d  drops %7d  marks %7d\n",
				p.Rack, p.Class, p.Index, p.MeanDepth, p.MaxDepth, p.Drops, p.Marks)
		}
		fmt.Println()
	}

	fixed, supp := results[0], results[1]
	fmt.Printf("Suppression completed %+d requests and moved p99 by %+.1fus vs fixed cloning.\n",
		supp.Completed-fixed.Completed,
		(float64(supp.Latency.P99)-float64(fixed.Latency.P99))/1e3)
	fmt.Println()
	fmt.Println("The same model drives the cong-* experiment family:")
	fmt.Println("  go run ./cmd/netclone-bench -run 'cong-*' -quick -timeline cong.csv")
}
