// Leaf–spine fabric example (§3.7 generalized).
//
// Declares a four-rack fabric with the topology layer: the clients
// share rack 0 with two servers, and three more racks of servers sit
// behind heterogeneous spine uplinks — a shape the old two-ToR
// WithMultiRack special case could not express. Every ToR runs the
// full NetClone program; the switch-ID ownership rule confines
// cloning, filtering, and state tracking to the clients' ToR, which
// the per-rack counter rollup (Result.Racks) makes directly visible.
//
// The -shards flag runs the same scenario on the parallel-in-time core
// (DESIGN.md §10): the fabric is partitioned by rack across that many
// window-synchronized engines. Results are byte-identical at every
// shard count — the run below asserts it.
//
//	go run ./examples/leafspine [-quick] [-shards N]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): 10x shorter windows")
	shards := flag.Int("shards", 0, "parallel-in-time shards (1 = sequential engine, 0 = auto: one per CPU, capped at the 4-rack fabric)")
	flag.Parse()
	warmup, window := 50*time.Millisecond, 200*time.Millisecond
	if *quick {
		warmup, window = 5*time.Millisecond, 20*time.Millisecond
	}
	if *shards == 0 {
		*shards = runtime.GOMAXPROCS(0)
	}

	base := netclone.NewScenario(
		netclone.WithRacks(
			netclone.HomRack(2, 16, 0),                                    // rack 0: the clients' rack
			netclone.HomRack(2, 16, 500*time.Nanosecond),                  // rack 1: fast spine port
			netclone.HomRack(2, 16, 2*time.Microsecond),                   // rack 2: slow spine port
			netclone.Rack{Servers: []int{8, 8}, Uplink: time.Microsecond}, // rack 3: small servers
		),
		netclone.WithPlacement(0),
		netclone.WithWorkload(netclone.WithJitter(netclone.Exp(25), 0.01)),
		netclone.WithOfferedLoad(1.2e6),
		netclone.WithWindow(warmup, window),
		netclone.WithSeed(4),
	)

	fmt.Printf("Leaf-spine NetClone: 4 racks, heterogeneous uplinks, clients on rack 0 (%d shard(s) requested)\n", *shards)
	sim := netclone.Sim()
	for _, scheme := range []netclone.Scheme{netclone.Baseline, netclone.NetClone} {
		res, err := sim.Run(base.With(
			netclone.WithScheme(scheme),
			netclone.WithShards(*shards),
		))
		if err != nil {
			log.Fatal(err)
		}
		// The parallel-in-time contract: the sharded run must be
		// indistinguishable from the sequential engine, row for row.
		seq, err := sim.Run(base.With(netclone.WithScheme(scheme)))
		if err != nil {
			log.Fatal(err)
		}
		if res.Latency != seq.Latency || res.Completed != seq.Completed {
			log.Fatalf("sharded run diverged from the sequential engine: %+v vs %+v",
				res.Latency, seq.Latency)
		}
		fmt.Printf("\n%-10s p50 %6.1fus  p99 %6.1fus  cloned %d  filtered %d\n",
			scheme, float64(res.Latency.P50)/1e3, float64(res.Latency.P99)/1e3,
			res.Switch.Cloned, res.Switch.FilterDrops)
		fmt.Printf("  %-12s %8s %10s %10s %12s %12s\n",
			"rack", "servers", "cloned", "requests", "passL3", "cloneDrops")
		for _, rs := range res.Racks {
			role := ""
			if rs.Rack == 0 {
				role = " (clients)"
			}
			fmt.Printf("  %-12s %8d %10d %10d %12d %12d\n",
				fmt.Sprintf("%d%s", rs.Rack, role), rs.Servers,
				rs.Switch.Cloned, rs.Switch.Requests, rs.Switch.PassL3, rs.CloneDropsAtServer)
			if rs.Rack != 0 && (rs.Switch.Cloned != 0 || rs.Switch.Requests != 0) {
				log.Fatal("ownership rule violated: a non-client ToR ran NetClone processing")
			}
		}
	}

	fmt.Println()
	fmt.Println("Only rack 0's ToR cloned or sequenced requests; every other ToR just")
	fmt.Println("passed stamped packets through (PassL3), whatever its uplink latency —")
	fmt.Println("the switch-ID ownership rule needs no NetClone awareness in the spine (§3.7).")
}
