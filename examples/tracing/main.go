// Tracing example: the flight recorder on an incast workload.
//
// Arms the simulator's flight recorder (WithTrace) on the congestion
// example's incast scenario, records every request's lifecycle — issue,
// clone fan-out, port enqueues with ECN marks, service, the filter
// race, completion — and writes the capture as Chrome trace-event JSON.
// Open the file at https://ui.perfetto.dev (or chrome://tracing): one
// process per shard, one track per rack, a nested flight/service span
// pair per request copy, instants for marks and drops.
//
// The recorder is strictly observational — the same run with tracing
// off produces byte-identical results — and storage-bounded: records
// land in a preallocated ring, oldest-first overwrite.
//
//	go run ./examples/tracing [-quick] [-o trace.json] [-rate N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): 10x shorter window")
	out := flag.String("o", "", "trace output path (default: netclone-incast-trace.json in the temp dir; .csv writes the flat dump)")
	rate := flag.Int("rate", 1, "record every Nth request per client")
	flag.Parse()
	window := 100 * time.Millisecond
	if *quick {
		window = 10 * time.Millisecond
	}
	if *out == "" {
		*out = filepath.Join(os.TempDir(), "netclone-incast-trace.json")
	}

	// The congestion example's incast: 2.5 Gbps edge links whose two
	// client down-ports saturate, so queues mark and clones race.
	sc := netclone.NewScenario(
		netclone.WithScheme(netclone.NetClone),
		netclone.WithServers(6, 16),
		netclone.WithWorkload(netclone.WithJitter(netclone.Exp(25), 0.01)),
		netclone.WithCongestion(netclone.NewCongestion().WithLinkRate(2.5)),
		netclone.WithOfferedLoad(1.2e6),
		netclone.WithWindow(20*time.Millisecond, window),
		netclone.WithSeed(7),
		netclone.WithTrace(*rate, 1<<17),
	)
	if err := sc.Validate(); err != nil {
		log.Fatal(err)
	}
	res, err := netclone.Sim().Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Flight recorder on the incast scenario (NetClone, 2.5 Gbps edge)")
	fmt.Printf("completed %d/%d requests, p99 %.1fus\n\n",
		res.Completed, res.Generated, float64(res.Latency.P99)/1e3)

	d := res.Trace
	kinds := map[string]int{}
	cloned := map[uint64]bool{}
	marked := map[uint64]bool{}
	for _, e := range d.Events {
		kinds[e.Kind.String()]++
		key := uint64(e.Client)<<32 | uint64(e.Seq)
		switch e.Kind.String() {
		case "clone":
			cloned[key] = true
		case "mark":
			marked[key] = true
		}
	}
	fmt.Printf("recorded %d events (rate 1/%d, %d overwritten by the ring):\n",
		len(d.Events), d.Rate, d.Dropped)
	for _, k := range []string{
		"issue", "clone", "dispatch", "port-enqueue", "mark", "port-drop",
		"clone-drop", "server-start", "server-finish", "filter-drop",
		"win", "complete", "redundant",
	} {
		if kinds[k] > 0 {
			fmt.Printf("  %-14s %8d\n", k, kinds[k])
		}
	}
	both := 0
	for k := range cloned {
		if marked[k] {
			both++
		}
	}
	fmt.Printf("\n%d traced requests were cloned; %d of those crossed an ECN-marking queue.\n",
		len(cloned), both)

	tel := res.Telemetry
	if len(tel.Shards) > 0 {
		s := tel.Shards[0]
		fmt.Printf("engine: %d events in %d bursts (max burst %d), %d occupancy samples\n",
			s.Events, s.Bursts, s.MaxBurst, len(tel.Engine))
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if filepath.Ext(*out) == ".csv" {
		err = netclone.WriteTraceCSV(f, d)
	} else {
		err = netclone.WriteChromeTrace(f, d)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s — load it at https://ui.perfetto.dev\n", *out)
	fmt.Println("(each rack is a track; cloned requests show two nested flight/service pairs)")
	fmt.Println()
	fmt.Println("The bench CLI records the same way across whole experiments:")
	fmt.Println("  go run ./cmd/netclone-bench -run cong-incast -quick -trace incast.json -trace-rate 1")
}
