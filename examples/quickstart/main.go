// Quickstart: the paper's headline effect in one run.
//
// Declares the paper's testbed once as a Scenario — 2 open-loop clients,
// a ToR switch, and 6 worker servers with 16 worker threads each, on the
// default Exp(25) synthetic workload with high service-time variability
// — then runs it on the simulator backend under two schemes, comparing
// the tail latency of random forwarding (Baseline) against in-switch
// dynamic cloning (NetClone) at a moderate load.
//
//	go run ./examples/quickstart [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): 10x shorter windows")
	flag.Parse()
	warmup, window := 50*time.Millisecond, 200*time.Millisecond
	if *quick {
		warmup, window = 5*time.Millisecond, 20*time.Millisecond
	}

	base := netclone.NewScenario(
		netclone.WithServers(6, 16),
		netclone.WithWorkload(netclone.WithJitter(netclone.Exp(25), 0.01)),
		netclone.WithOfferedLoad(1e6),
		netclone.WithWindow(warmup, window),
		netclone.WithSeed(1),
	)

	fmt.Println("NetClone quickstart: Exp(25) workload, 6 servers x 16 workers, 1.0 MRPS")
	fmt.Println()
	fmt.Printf("%-10s %10s %10s %10s %10s %12s\n",
		"scheme", "p50(us)", "p99(us)", "p999(us)", "max(us)", "cloned")

	sim := netclone.Sim()
	for _, scheme := range []netclone.Scheme{netclone.Baseline, netclone.NetClone} {
		res, err := sim.Run(base.With(netclone.WithScheme(scheme)))
		if err != nil {
			log.Fatal(err)
		}
		l := res.Latency
		fmt.Printf("%-10s %10.1f %10.1f %10.1f %10.1f %12d\n",
			scheme,
			float64(l.P50)/1e3, float64(l.P99)/1e3, float64(l.P999)/1e3, float64(l.Max)/1e3,
			res.Switch.Cloned)
	}

	fmt.Println()
	fmt.Println("NetClone clones a request only when both candidate servers are idle")
	fmt.Println("and filters the slower response in the switch, so the p99/p999 tail")
	fmt.Println("drops while throughput stays at the baseline's level (paper Fig 7a).")
	fmt.Println()
	fmt.Println("The same Scenario also runs on the real-UDP backend — see")
	fmt.Println("examples/udpcluster for the sim-vs-emu comparison.")
}
