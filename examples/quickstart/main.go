// Quickstart: the paper's headline effect in one run.
//
// Simulates the paper's testbed — 2 open-loop clients, a ToR switch, and
// 6 worker servers with 16 worker threads each — on the default Exp(25)
// synthetic workload with high service-time variability, and compares the
// tail latency of random forwarding (Baseline) against in-switch dynamic
// cloning (NetClone) at a moderate load.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"netclone"
)

func main() {
	workers := []int{16, 16, 16, 16, 16, 16}
	service := netclone.WithJitter(netclone.Exp(25), 0.01)

	fmt.Println("NetClone quickstart: Exp(25) workload, 6 servers x 16 workers, 1.0 MRPS")
	fmt.Println()
	fmt.Printf("%-10s %10s %10s %10s %10s %12s\n",
		"scheme", "p50(us)", "p99(us)", "p999(us)", "max(us)", "cloned")

	for _, scheme := range []netclone.Scheme{netclone.Baseline, netclone.NetClone} {
		res, err := netclone.Run(netclone.Config{
			Scheme:     scheme,
			Workers:    workers,
			Service:    service,
			OfferedRPS: 1e6,
			WarmupNS:   50e6,  // 50 ms warmup
			DurationNS: 200e6, // 200 ms measured
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		l := res.Latency
		fmt.Printf("%-10s %10.1f %10.1f %10.1f %10.1f %12d\n",
			scheme,
			float64(l.P50)/1e3, float64(l.P99)/1e3, float64(l.P999)/1e3, float64(l.Max)/1e3,
			res.Switch.Cloned)
	}

	fmt.Println()
	fmt.Println("NetClone clones a request only when both candidate servers are idle")
	fmt.Println("and filters the slower response in the switch, so the p99/p999 tail")
	fmt.Println("drops while throughput stays at the baseline's level (paper Fig 7a).")
}
