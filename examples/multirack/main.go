// Multi-rack deployment example (§3.7).
//
// Places the six worker servers behind their own ToR switch, reached
// from the clients' rack through an aggregation layer — a one-option
// change to the base Scenario (WithMultiRack). Both ToRs run the full
// NetClone program; the switch-ID ownership rule makes the client-side
// ToR do all cloning, filtering, and state tracking while the
// server-side ToR passes stamped packets through. The example also
// prints the sampled latency breakdown, showing that the aggregation
// layer adds only fixed path cost — the tail is still queueing and
// service variability, which cloning masks.
//
//	go run ./examples/multirack [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): 10x shorter windows")
	flag.Parse()
	warmup, window := 50*time.Millisecond, 200*time.Millisecond
	if *quick {
		warmup, window = 5*time.Millisecond, 20*time.Millisecond
	}

	base := netclone.NewScenario(
		netclone.WithScheme(netclone.NetClone),
		netclone.WithServers(6, 16),
		netclone.WithWorkload(netclone.WithJitter(netclone.Exp(25), 0.01)),
		netclone.WithOfferedLoad(1e6),
		netclone.WithWindow(warmup, window),
		netclone.WithSeed(4),
		netclone.WithBreakdownSampling(10),
	)

	fmt.Println("Multi-rack NetClone: clients and servers on different racks")
	fmt.Printf("%-22s %10s %10s %10s %14s\n", "configuration", "p50(us)", "p99(us)", "cloned", "remote PassL3")

	sim := netclone.Sim()
	for _, v := range []struct {
		label string
		sc    *netclone.Scenario
	}{
		{"single rack", base},
		{"multi-rack (2us agg)", base.With(netclone.WithMultiRack(2 * time.Microsecond))},
	} {
		res, err := sim.Run(v.sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.1f %10.1f %10d %14d\n",
			v.label,
			float64(res.Latency.P50)/1e3, float64(res.Latency.P99)/1e3,
			res.Switch.Cloned, res.RemoteSwitch.PassL3)
		if res.RemoteSwitch.Cloned != 0 {
			log.Fatal("ownership rule violated: server-side ToR cloned packets")
		}
		if res.Breakdown != nil {
			b := res.Breakdown
			fmt.Printf("    breakdown: queueWait p99 %.1fus, service p99 %.1fus, path p99 %.1fus, clone wins %d/%d\n",
				float64(b.QueueWait.P99)/1e3, float64(b.Service.P99)/1e3,
				float64(b.Path.P99)/1e3, b.WonByClone, b.Sampled)
		}
	}

	fmt.Println()
	fmt.Println("The server-side ToR saw every packet (PassL3) but cloned none: the")
	fmt.Println("switch-ID field confines NetClone processing to the clients' ToR, so")
	fmt.Println("aggregation switches need no NetClone awareness (§3.7).")
}
