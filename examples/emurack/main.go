// Two racks, real sockets, injected chaos: the emu backend's fault
// parity.
//
// Declares one chaos Scenario — two 2-server racks behind a 200us
// uplink, a mid-run server crash/recover, a 20% loss window — and runs
// it unchanged on both backends. The simulator executes the fabric and
// the fault plan on virtual time; the emu backend renders the remote
// rack as an in-process relay that delays real datagrams and arms the
// same fault windows on the wall clock (loss and jitter at the relay,
// the crash by muting the server's socket). Both backends lose some
// completions to the chaos and neither collapses — the parity the
// capability matrix in DESIGN.md §12 pins.
//
// Only socket-expressible faults run here: a kind the emu backend
// cannot express on real sockets (a service-time slowdown, a switch
// outage) is rejected by name with ErrSimOnly rather than silently
// simulated.
//
//	go run ./examples/emurack [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): a short send window")
	flag.Parse()
	window := 2 * time.Second
	if *quick {
		window = 300 * time.Millisecond
	}

	// The fault schedule scales with the window: server 0 is down
	// across the middle third, and a 20% loss window covers the start
	// of the second half.
	sc := netclone.NewScenario(
		netclone.WithScheme(netclone.NetClone),
		netclone.WithRacks(
			netclone.Rack{Servers: []int{2, 2}},
			netclone.Rack{Servers: []int{2, 2}, Uplink: 200 * time.Microsecond},
		),
		netclone.WithClients(1),
		netclone.WithWorkload(netclone.Exp(25)),
		netclone.WithOfferedLoad(2000),
		netclone.WithWindow(0, window),
		netclone.WithSeed(13),
		netclone.WithFaultInjections(
			netclone.FaultServerCrash(0, window/3, 2*window/3),
			netclone.FaultLoss(window/2, 3*window/4, 0.2),
		),
	)
	if err := sc.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Two-rack chaos on both backends: crash + loss window, 200us uplink")
	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
		"backend", "generated", "completed", "frac", "cloned", "redundant")

	for _, be := range []netclone.Backend{netclone.Sim(), netclone.Emu()} {
		res, err := be.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		frac := 0.0
		if res.Generated > 0 {
			frac = float64(res.Completed) / float64(res.Generated)
		}
		fmt.Printf("%-8s %10d %10d %9.0f%% %10d %10d\n",
			res.Backend, res.Generated, res.Completed, 100*frac,
			res.Switch.Cloned, res.RedundantAtClient)
		if res.Completed < res.Generated/2 {
			log.Fatalf("%s: chaos collapsed the run (completed %d of %d)",
				res.Backend, res.Completed, res.Generated)
		}
	}

	fmt.Println()
	fmt.Println("One definition, two substrates: the crash and the loss window cost")
	fmt.Println("both backends some completions without collapsing either. The same")
	fmt.Println("scenario runs through the CLI as netclone-bench -run chaos-2rack")
	fmt.Println("-backend sim|emu.")
}
