// Key-value store example: the paper's Redis experiment (§5.5, Fig 11).
//
// Declares a replicated in-memory key-value cluster — 6 servers with 8
// worker threads each, 1 million objects, Zipf-0.99 key popularity — as
// a base Scenario, then sweeps load for two read mixes (99% GET / 1%
// SCAN and 90% GET / 10% SCAN) on the simulator backend, comparing
// Baseline, C-Clone, and NetClone. SCANs read 100 objects, so a small
// SCAN share dominates service time.
//
//	go run ./examples/kvstore [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netclone"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity (CI smoke): 10x shorter windows")
	flag.Parse()
	warmup, window := 50*time.Millisecond, 200*time.Millisecond
	if *quick {
		warmup, window = 5*time.Millisecond, 20*time.Millisecond
	}

	model := netclone.RedisModel()

	mixes := []struct {
		name  string
		pGet  float64
		pScan float64
		loads []float64 // offered MRPS
	}{
		{"99%-GET, 1%-SCAN", 0.99, 0.01, []float64{0.05, 0.2, 0.35, 0.5}},
		{"90%-GET, 10%-SCAN", 0.90, 0.10, []float64{0.02, 0.06, 0.1, 0.13}},
	}

	sim := netclone.Sim()
	for _, m := range mixes {
		fmt.Printf("== Redis-like workload, %s (Zipf-0.99, 1M objects)\n", m.name)
		fmt.Printf("%-10s %12s %12s %10s\n", "scheme", "offered(M)", "tput(M)", "p99(us)")
		base := netclone.NewScenario(
			netclone.WithServers(6, 8),
			netclone.WithKVWorkload(netclone.NewKVMix(m.pGet, m.pScan, 1_000_000, 0.99), model),
			netclone.WithWindow(warmup, window),
			netclone.WithSeed(2),
		)
		for _, scheme := range []netclone.Scheme{netclone.Baseline, netclone.CClone, netclone.NetClone} {
			for _, load := range m.loads {
				res, err := sim.Run(base.With(
					netclone.WithScheme(scheme),
					netclone.WithOfferedLoad(load*1e6),
				))
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-10s %12.2f %12.3f %10.1f\n",
					scheme, load, res.ThroughputRPS/1e6, float64(res.Latency.P99)/1e3)
			}
		}
		fmt.Println()
	}
	fmt.Println("Writes are never cloned (the switch forwards SETs on the normal path);")
	fmt.Println("C-Clone's static duplication halves capacity, while NetClone keeps the")
	fmt.Println("baseline's throughput and cuts the read tail (paper Fig 11).")
}
