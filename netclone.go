// Package netclone is a faithful software reproduction of "NetClone:
// Fast, Scalable, and Dynamic Request Cloning for Microsecond-Scale
// RPCs" (Gyuyeong Kim, ACM SIGCOMM 2023).
//
// NetClone reduces RPC tail latency by cloning requests in the
// Top-of-Rack switch: a request is replicated to a second server only
// when both candidate servers are tracked as idle, and the slower of the
// two responses is filtered in the switch data plane using request-ID
// fingerprints. This package is the public facade over the internal
// implementation:
//
//   - the PISA-constrained switch data plane (the paper's contribution),
//   - a deterministic discrete-event cluster simulation reproducing the
//     paper's testbed and every figure of its evaluation,
//   - a declarative leaf–spine fabric layer (WithRacks/WithPlacement)
//     generalizing the §3.7 multi-rack deployment to N racks with
//     per-link latency,
//   - a real-UDP emulation of the switch, servers, and clients,
//   - workload generators (synthetic service-time distributions and
//     Zipf-skewed key-value mixes).
//
// # Quick start
//
// Describe an experiment once as a composable Scenario, then run it on
// a Backend. The Sim backend is the deterministic simulator behind all
// paper figures; the Emu backend runs the identical scenario over real
// UDP sockets:
//
//	sc := netclone.NewScenario(
//		netclone.WithScheme(netclone.NetClone),
//		netclone.WithServers(6, 16),
//		netclone.WithWorkload(netclone.WithJitter(netclone.Exp(25), 0.01)),
//		netclone.WithOfferedLoad(1e6),
//		netclone.WithWindow(50*time.Millisecond, 200*time.Millisecond),
//		netclone.WithSeed(1),
//	)
//	res, err := netclone.Sim().Run(sc)
//	fmt.Println(res.Latency) // p50/p99/... in nanoseconds
//
//	emu, err := netclone.Emu().Run(sc) // same scenario, real sockets
//	fmt.Println(emu.Completed, emu.Switch.Cloned, emu.RedundantAtClient)
//
// Reproduce a full paper figure (optionally on a different backend via
// Options.Backend):
//
//	report, err := netclone.RunExperiment("fig7a", netclone.DefaultOptions())
//	netclone.RenderText(os.Stdout, report)
//
// Every experiment describes its grid of scenario points declaratively
// and hands it to a bounded worker pool, so independent points run
// concurrently. Options.Parallelism bounds the pool (0 = one worker per
// CPU); reports are byte-identical at every parallelism level:
//
//	opts := netclone.DefaultOptions()
//	opts.Parallelism = 8 // or leave 0 for GOMAXPROCS
//	report, err := netclone.RunExperiment("fig7a", opts)
//
// The pre-Scenario entry points — Run(Config), RunParallel, and the
// flat Config type — remain as thin compatibility wrappers with
// byte-identical results.
//
// See README.md for a tour and the old-to-new migration table,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-vs-measured comparison of every table and figure.
package netclone

import (
	"fmt"
	"io"
	"time"

	"netclone/internal/congestion"
	"netclone/internal/faults"
	"netclone/internal/harness"
	"netclone/internal/kvstore"
	"netclone/internal/runner"
	"netclone/internal/scenario"
	"netclone/internal/simcluster"
	"netclone/internal/topology"
	"netclone/internal/trace"
	"netclone/internal/workload"
)

// Schemes compared in the paper's evaluation (§5.1.3).
const (
	// Baseline forwards each request to a uniformly random worker.
	Baseline = simcluster.Baseline
	// CClone is traditional client-based static cloning.
	CClone = simcluster.CClone
	// LAEDGE is coordinator-based dynamic cloning (NSDI'21).
	LAEDGE = simcluster.LAEDGE
	// NetClone is in-switch dynamic cloning with response filtering.
	NetClone = simcluster.NetClone
	// NetCloneRackSched integrates NetClone with the RackSched JSQ
	// scheduler (§3.7).
	NetCloneRackSched = simcluster.NetCloneRackSched
	// NetCloneNoFilter disables response filtering (Fig 15 ablation).
	NetCloneNoFilter = simcluster.NetCloneNoFilter
	// NetCloneSuppress is NetClone with near-source clone suppression:
	// no clone is created while the port it would leave through (or the
	// requester's return port) sits past the ECN marking threshold.
	// Needs WithCongestion; degrades to exact NetClone without it.
	NetCloneSuppress = simcluster.NetCloneSuppress
	// NetCloneAdaptive is NetClone with an adaptive clone budget: a
	// token bucket refilled at a rate scaled by the watched port's
	// queue headroom. Needs WithCongestion; degrades to exact NetClone
	// without it.
	NetCloneAdaptive = simcluster.NetCloneAdaptive
)

// Scheme selects the request-dispatching scheme of a run.
type Scheme = simcluster.Scheme

// ---------------------------------------------------------------------
// Scenario definition

// Scenario is one composable experiment definition: topology, workload,
// faults, calibration, and measurement window, independent of the
// backend that executes it. Build it with NewScenario and the With*
// options; derive variants with its With method.
type Scenario = scenario.Scenario

// ScenarioOption configures a Scenario under construction.
type ScenarioOption = scenario.Option

// NewScenario builds a scenario from functional options.
func NewScenario(opts ...ScenarioOption) *Scenario { return scenario.New(opts...) }

// ScenarioFromConfig wraps a legacy flat Config as a Scenario — the
// migration bridge for code built against Run(Config).
func ScenarioFromConfig(cfg Config) *Scenario { return scenario.FromConfig(cfg) }

// WithScheme selects the request-dispatching scheme under test.
func WithScheme(s Scheme) ScenarioOption { return scenario.WithScheme(s) }

// WithTopology declares the worker servers explicitly: one server per
// argument, each with that many worker threads (heterogeneous racks
// pass differing counts).
func WithTopology(workerThreads ...int) ScenarioOption {
	return scenario.WithTopology(workerThreads...)
}

// WithServers declares n homogeneous servers with threads worker
// threads each.
func WithServers(n, threads int) ScenarioOption { return scenario.WithServers(n, threads) }

// WithClients sets the number of open-loop client machines (default 2).
func WithClients(n int) ScenarioOption { return scenario.WithClients(n) }

// WithCoordinators scales out the LAEDGE coordinator tier (§2.2).
func WithCoordinators(n int) ScenarioOption { return scenario.WithCoordinators(n) }

// WithMultiRack places the workers behind a second ToR switch reached
// through an aggregation layer with the given extra one-way delay
// (§3.7). Kept as a thin wrapper over the canonical two-rack fabric;
// new fabrics should prefer WithRacks. Sim only; not modelled for
// LAEDGE.
func WithMultiRack(aggDelay time.Duration) ScenarioOption { return scenario.WithMultiRack(aggDelay) }

// ---------------------------------------------------------------------
// Fabric topology (multi-rack leaf–spine deployments)

// Rack is one leaf of a declarative fabric: the worker-thread counts of
// the servers homed behind one ToR switch, plus that ToR's spine
// uplink latency (0 means the 1 us default). Crossing the fabric costs
// the sum of both racks' uplinks one way.
type Rack = topology.Rack

// TopologySpec is a declarative, immutable leaf–spine fabric: N racks
// of heterogeneous servers, one ToR per rack, per-link spine latency,
// and explicit client placement. Attach one to a scenario with
// WithRacks/WithPlacement; the simulator compiles it into a flat
// routing table and builds one switch data plane per rack, with the
// §3.7 switch-ID ownership rule confining NetClone processing to the
// clients' ToR.
type TopologySpec = topology.Spec

// HomRack returns a rack of n homogeneous servers with threads worker
// threads each behind an uplink of the given latency (0 = default).
func HomRack(n, threads int, uplink time.Duration) Rack {
	return topology.HomRack(n, threads, uplink)
}

// WithRacks declares a multi-rack leaf–spine fabric: each rack lists
// its servers and optionally its uplink latency. Clients sit on rack 0
// unless WithPlacement says otherwise. Replaces any earlier WithRacks/
// WithTopology/WithServers declaration. Sim only.
func WithRacks(racks ...Rack) ScenarioOption { return scenario.WithRacks(racks...) }

// WithPlacement places the clients on the given rack of the WithRacks
// fabric (order-independent with WithRacks). Sim only.
func WithPlacement(clientRack int) ScenarioOption { return scenario.WithPlacement(clientRack) }

// RackStats is one rack's rolled-up counter view in a multi-rack
// Result (Result.Racks): the rack's ToR data-plane snapshot plus the
// clone drops of the servers homed there. Only the clients' rack ever
// shows NetClone activity — the per-rack view of the ownership rule.
type RackStats = simcluster.RackStats

// WithWorkload selects a synthetic service-time distribution (§5.1.2).
func WithWorkload(d Dist) ScenarioOption { return scenario.WithWorkload(d) }

// WithKVWorkload switches to the key-value workload (§5.5): operations
// drawn from mix, simulated service times from the cost model. The Emu
// backend executes the operations against a real in-memory store.
func WithKVWorkload(mix *KVMix, cost CostModel) ScenarioOption {
	return scenario.WithKVWorkload(mix, cost)
}

// WithOfferedLoad sets the aggregate open-loop request rate in requests
// per second.
func WithOfferedLoad(rps float64) ScenarioOption { return scenario.WithOfferedLoad(rps) }

// WithWindow bounds the measurement window: requests completing within
// [warmup, warmup+duration) are recorded.
func WithWindow(warmup, duration time.Duration) ScenarioOption {
	return scenario.WithWindow(warmup, duration)
}

// WithSeed makes the run reproducible (bit-for-bit on the Sim backend).
func WithSeed(seed uint64) ScenarioOption { return scenario.WithSeed(seed) }

// WithCalibration overrides the simulated testbed's latency constants.
func WithCalibration(cal Calibration) ScenarioOption { return scenario.WithCalibration(cal) }

// WithFilter sizes the switch response-filter tables: tables in [1,256],
// slots a power of two per table.
func WithFilter(tables, slots int) ScenarioOption { return scenario.WithFilter(tables, slots) }

// WithLoss drops each link traversal independently with probability p
// (§3.6) — a thin wrapper over a one-entry fault plan. Sim only.
func WithLoss(p float64) ScenarioOption { return scenario.WithLoss(p) }

// WithSwitchFailure stops the switch during [failAt, recoverAt) — the
// Fig 16 experiment, as a one-entry fault plan. Sim only.
func WithSwitchFailure(failAt, recoverAt time.Duration) ScenarioOption {
	return scenario.WithSwitchFailure(failAt, recoverAt)
}

// ---------------------------------------------------------------------
// Congestion model

// CongestionSpec is a declarative, immutable congestion model: finite
// FIFO queues with configurable service rates (link bandwidth) at
// every ToR and spine egress port, an ECN-style marking threshold, and
// tail-drop on overflow. Build one with NewCongestion and its With*
// methods, attach it with WithCongestion, and read the executed
// model's drops, marks, and queue depths back from Result.Congestion.
// A nil spec means infinite-capacity links — byte-identical to the
// pre-congestion simulator. Sim only.
type CongestionSpec = congestion.Spec

// NewCongestion returns the default congestion model: 64-packet port
// queues, marking above 16, 10 Gbps edge ports, 40 Gbps fabric ports,
// 1500 B packets.
func NewCongestion() *CongestionSpec { return congestion.New() }

// WithCongestion sets the scenario's congestion model. Sim only.
func WithCongestion(spec *CongestionSpec) ScenarioOption { return scenario.WithCongestion(spec) }

// WithLinkRate sets the edge-port (ToR<->host) line rate in Gbps,
// enabling the congestion model with defaults for the other knobs if
// no spec is set. Sim only.
func WithLinkRate(gbps float64) ScenarioOption { return scenario.WithLinkRate(gbps) }

// CongestionSummary is the Result view of an executed congestion model
// (Result.Congestion): cluster-wide drops, marks, and maximum queue
// depth; per-port occupancy statistics; per-rack rollups; and, for
// reactive schemes, the suppressed-clone and budget-skip counters.
type CongestionSummary = simcluster.CongestionSummary

// PortCongStats is one egress port's occupancy statistics in a
// CongestionSummary.
type PortCongStats = simcluster.PortCongStats

// RackCongStats is one rack's congestion rollup in a CongestionSummary.
type RackCongStats = simcluster.RackCongStats

// ---------------------------------------------------------------------
// Fault plans (chaos experiments)

// FaultPlan is a declarative, ordered set of typed fault injections the
// simulator executes during a run: build one with NewFaultPlan and the
// Fault* constructors, attach it with WithFaults, and read the executed
// windows plus degraded-window latency back from Result.Faults. Plans
// are validated (windows, targets, same-kind overlap contradictions)
// by Scenario.Validate. Sim only.
type FaultPlan = faults.Plan

// FaultInjection is one typed, time-scheduled fault of a plan.
type FaultInjection = faults.Injection

// FaultForever is the recover/until sentinel for injections that stay
// active to the end of the run.
const FaultForever = faults.Forever

// NewFaultPlan builds a fault plan from injections.
func NewFaultPlan(inj ...FaultInjection) *FaultPlan { return faults.New(inj...) }

// WithFaults sets the scenario's fault plan, replacing any previously
// composed plan (including WithLoss / WithSwitchFailure entries).
func WithFaults(plan *FaultPlan) ScenarioOption { return scenario.WithFaults(plan) }

// WithFaultInjections appends injections to the scenario's fault plan.
func WithFaultInjections(inj ...FaultInjection) ScenarioOption {
	return scenario.WithFaultInjections(inj...)
}

// FaultServerCrash takes a worker server down during [at, recoverAt):
// queued and in-flight work is lost and the server restarts empty.
func FaultServerCrash(server int, at, recoverAt time.Duration) FaultInjection {
	return faults.ServerCrash(server, at, recoverAt)
}

// FaultServerSlowdown multiplies a server's service times by factor
// during [from, until), ramping linearly from 1x over ramp — the
// straggling-endpoint model.
func FaultServerSlowdown(server int, from, until time.Duration, factor float64, ramp time.Duration) FaultInjection {
	return faults.ServerSlowdown(server, from, until, factor, ramp)
}

// FaultLoss drops each link traversal with constant probability p
// during [from, until).
func FaultLoss(from, until time.Duration, p float64) FaultInjection {
	return faults.Loss(from, until, p)
}

// FaultLossRamp interpolates the per-link drop probability linearly
// from startP to endP across [from, until) — a decaying loss burst.
func FaultLossRamp(from, until time.Duration, startP, endP float64) FaultInjection {
	return faults.LossRamp(from, until, startP, endP)
}

// FaultJitter adds a uniform random extra delay in [0, maxExtra] to
// every client<->switch<->server link traversal during [from, until).
func FaultJitter(from, until time.Duration, maxExtra time.Duration) FaultInjection {
	return faults.Jitter(from, until, maxExtra)
}

// FaultCoordinatorCrash takes a LAEDGE coordinator down during
// [at, recoverAt).
func FaultCoordinatorCrash(coord int, at, recoverAt time.Duration) FaultInjection {
	return faults.CoordinatorCrash(coord, at, recoverAt)
}

// FaultSwitchOutage stops the client-side ToR during [at, recoverAt),
// dropping all packets and its soft state (§3.6).
func FaultSwitchOutage(at, recoverAt time.Duration) FaultInjection {
	return faults.SwitchOutage(at, recoverAt)
}

// FaultSummary is the Result view of an executed fault plan: the
// per-window availability timeline, fault-induced drops, and the
// degraded-window latency summary.
type FaultSummary = simcluster.FaultSummary

// FaultWindow is one executed injection window of a FaultSummary.
type FaultWindow = simcluster.FaultWindow

// WithTimeline records completed requests into per-bin counts over the
// whole run. Sim only.
func WithTimeline(bin time.Duration) ScenarioOption { return scenario.WithTimeline(bin) }

// WithBreakdownSampling traces every n-th request through queueing,
// service, and path phases (Result.Breakdown). Sim only.
func WithBreakdownSampling(every int) ScenarioOption { return scenario.WithBreakdownSampling(every) }

// WithShards requests parallel-in-time execution across n per-rack
// event engines with conservative time-window sync; 0 or 1 runs the
// sequential engine, and the result is the same either way. Sim only.
func WithShards(n int) ScenarioOption { return scenario.WithShards(n) }

// WithTrace enables the flight recorder: every rate-th request per
// client (rate 1 traces everything) has its full lifecycle recorded
// into Result.Trace, and engine/shard telemetry is snapshotted into
// Result.Telemetry. ringCap bounds the per-shard record ring (0 means
// the default, 64Ki records); on overflow the oldest records are
// overwritten. Tracing never perturbs the simulation — the event order
// is bit-identical with it on or off — and rate 0 (the default)
// disables it at zero cost. Export with WriteChromeTrace (Perfetto /
// chrome://tracing) or WriteTraceCSV. Sim only.
func WithTrace(rate, ringCap int) ScenarioOption { return scenario.WithTrace(rate, ringCap) }

// TraceData is a run's flight-recorder output (Result.Trace): sampled
// request-lifecycle events in virtual-time order.
type TraceData = trace.Data

// TraceEvent is one fixed-size flight-recorder record.
type TraceEvent = trace.Event

// Telemetry is a run's engine-and-shard counter snapshot
// (Result.Telemetry): per-shard driver statistics plus time-binned
// engine occupancy gauges.
type Telemetry = trace.Telemetry

// ShardInfo reports how a WithShards request was resolved — effective
// shard count, fallback reason, per-shard event split
// (Result.ShardInfo on the Sim backend).
type ShardInfo = simcluster.ShardInfo

// WriteChromeTrace renders flight-recorder data as Chrome trace-event
// JSON, loadable at ui.perfetto.dev or chrome://tracing: one process
// per shard, one track per rack, request/flight/service spans nested,
// with marks, drops, and clone decisions as instants.
func WriteChromeTrace(w io.Writer, d *TraceData) error { return trace.WriteChrome(w, d) }

// WriteTraceCSV dumps flight-recorder data as a flat CSV
// (at_ns,kind,client,seq,rack,shard,flags,value,port).
func WriteTraceCSV(w io.Writer, d *TraceData) error { return trace.WriteCSV(w, d) }

// WithoutCloneDropGuard removes the server-side stale-state guard
// (§3.4 ablation). Sim only.
func WithoutCloneDropGuard() ScenarioOption { return scenario.WithoutCloneDropGuard() }

// WithSingleOrderingGroups restricts clients to groups whose first
// candidate has the lower server ID (§3.3 ablation). Sim only.
func WithSingleOrderingGroups() ScenarioOption { return scenario.WithSingleOrderingGroups() }

// ---------------------------------------------------------------------
// Backends

// Backend executes Scenarios; implementations are safe for concurrent
// Run calls. Sim() and Emu() are the built-in backends.
type Backend = scenario.Backend

// ScenarioResult is the unified outcome of running a Scenario on any
// backend: the simulator's full counter set plus the backend identity
// and the server-side processed count, so sim-vs-emu runs compare
// directly (latency summary, throughput, clone/redundant/drop counts).
type ScenarioResult = scenario.Result

// Sim returns the simulator backend: scenarios run as deterministic
// discrete-event simulations, bit-identical for identical scenarios.
func Sim() Backend { return scenario.Sim() }

// Emu returns the UDP-emulation backend: the scenario's topology is
// instantiated as an in-process loopback cluster (switch emulator,
// kvstore-backed servers, measuring clients) exercising the identical
// data-plane pipeline and wire format over the kernel network stack.
// Offered rates are capped (EmuMaxRate) and latency figures include
// kernel scheduling noise; use it to prove the protocol end-to-end and
// to cross-check counters against Sim.
func Emu(opts ...EmuOption) Backend { return scenario.Emu(opts...) }

// ErrSimOnly marks experiment or scenario errors caused by a capability
// only the simulator models (fault injection, timelines, coordinator
// tiers, ...). Sweeps over a non-sim backend can errors.Is against it
// to skip such experiments instead of aborting.
var ErrSimOnly = scenario.ErrSimOnly

// EmuOption tunes the UDP-emulation backend.
type EmuOption = scenario.EmuOption

// EmuMaxRate caps the emulated open-loop rate in requests per second
// (default 4000): simulator-scale MRPS loads are scaled down to what
// loopback sockets absorb.
func EmuMaxRate(rps float64) EmuOption { return scenario.EmuMaxRate(rps) }

// EmuTimeout bounds each emulated request round trip (default 5s).
func EmuTimeout(d time.Duration) EmuOption { return scenario.EmuTimeout(d) }

// EmuStoreObjects sizes the emulated servers' shared key-value store
// (default 65536).
func EmuStoreObjects(n int) EmuOption { return scenario.EmuStoreObjects(n) }

// ---------------------------------------------------------------------
// Legacy flat-config entry points (compatibility wrappers)

// Config describes one simulated experiment point; see the field docs in
// the simcluster package. New code should prefer NewScenario.
type Config = simcluster.Config

// Calibration holds the simulated testbed's latency constants.
type Calibration = simcluster.Calibration

// Result is the outcome of one simulated run.
type Result = simcluster.Result

// Run executes one simulated experiment point. It is the legacy
// equivalent of Sim().Run(ScenarioFromConfig(cfg)) minus the scenario
// validation pass, kept byte-identical to the pre-Scenario API.
func Run(cfg Config) (Result, error) { return simcluster.Run(cfg) }

// RunParallel executes many independent simulation points concurrently,
// at most parallelism at a time (0 = one worker per CPU), and returns
// the results in input order. Every run is seed-deterministic and
// isolated, so the output is identical to calling Run in a loop; only
// the wall time changes. All points run even when some fail, and the
// returned error aggregates one entry per failed point.
func RunParallel(cfgs []Config, parallelism int) ([]Result, error) {
	return runner.Run(cfgs, runner.Options{Parallelism: parallelism})
}

// DefaultCalibration returns the calibration constants documented in
// DESIGN.md §5.
func DefaultCalibration() Calibration { return simcluster.DefaultCalibration() }

// ---------------------------------------------------------------------
// Workloads

// Dist is a service-time distribution.
type Dist = workload.Dist

// Exp returns an exponential service-time distribution with the given
// mean in microseconds (the paper's Exp(25) / Exp(50) workloads).
func Exp(meanUS float64) Dist { return workload.Exp(meanUS) }

// Bimodal9010 returns the paper's 90%/10% bimodal distribution with means
// in microseconds.
func Bimodal9010(shortUS, longUS float64) Dist { return workload.Bimodal9010(shortUS, longUS) }

// WithJitter wraps a distribution with the paper's x15 jitter at
// probability p (p=0.01 high variability, p=0.001 low).
func WithJitter(base Dist, p float64) Dist { return workload.WithJitter(base, p) }

// KVMix draws GET/SCAN/SET operations with Zipf-skewed keys (§5.5).
type KVMix = workload.KVMix

// NewKVMix builds an operation mix over n keys with Zipf skew s.
func NewKVMix(pGet, pScan float64, n uint64, s float64) *KVMix {
	return workload.NewKVMix(pGet, pScan, n, s)
}

// CostModel supplies per-operation service times for key-value servers.
type CostModel = kvstore.CostModel

// RedisModel returns the Redis-calibrated cost model (Fig 11).
func RedisModel() CostModel { return kvstore.Redis() }

// MemcachedModel returns the Memcached-calibrated cost model (Fig 12).
func MemcachedModel() CostModel { return kvstore.Memcached() }

// ---------------------------------------------------------------------
// Experiments

// Options scale experiment fidelity for RunExperiment, bound its
// parallelism (Options.Parallelism; 0 = one worker per CPU), and select
// the execution backend (Options.Backend; nil = Sim()).
type Options = harness.Options

// NoWarmup is the explicit Options.WarmupNS sentinel for "measure from
// time zero"; a zero WarmupNS means the default 50 ms warmup.
const NoWarmup = harness.NoWarmup

// Report is a rendered-ready experiment result.
type Report = harness.Report

// ReportKind declares a report's structural shape (figure vs timeline)
// so consumers like netclone-bench -timeline can select reports without
// sniffing axis labels.
type ReportKind = harness.ReportKind

const (
	// ReportFigure marks the default shape: series over an experiment
	// variable (load, rate, factor).
	ReportFigure = harness.ReportFigure
	// ReportTimeline marks time-binned reports (fig16, chaos-*,
	// cong-timeline): every series' X axis is seconds.
	ReportTimeline = harness.ReportTimeline
)

// Aux-series labels carried by timeline reports alongside throughput;
// netclone-bench -timeline folds them into dedicated CSV columns.
const (
	TimelineDepthLabel = harness.TimelineDepthLabel
	TimelineDropsLabel = harness.TimelineDropsLabel
)

// ReportSeries is one labelled curve of a figure report.
type ReportSeries = harness.Series

// ReportPoint is one datum of a report series.
type ReportPoint = harness.Point

// Experiment is one reproducible table or figure of the paper.
type Experiment = harness.Experiment

// DefaultOptions returns full-fidelity experiment options.
func DefaultOptions() Options { return harness.Default() }

// QuickOptions returns reduced-fidelity options for fast iteration.
func QuickOptions() Options { return harness.Quick() }

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []*Experiment { return harness.All() }

// ExperimentIDs returns the sorted experiment identifiers (fig7a...,
// table1, table2, abl-...).
func ExperimentIDs() []string { return harness.IDs() }

// RunExperiment reproduces one paper table or figure by ID on the
// backend selected by opts.Backend (the simulator when nil).
func RunExperiment(id string, opts Options) (Report, error) {
	e, ok := harness.Lookup(id)
	if !ok {
		return Report{}, fmt.Errorf("netclone: unknown experiment %q (see ExperimentIDs)", id)
	}
	return e.Run(opts)
}

// RenderText writes a human-readable rendering of a report.
func RenderText(w io.Writer, r Report) error { return harness.RenderText(w, r) }

// RenderCSV writes a report as CSV.
func RenderCSV(w io.Writer, r Report) error { return harness.RenderCSV(w, r) }

// RenderJSON writes a report as indented JSON.
func RenderJSON(w io.Writer, r Report) error { return harness.RenderJSON(w, r) }
