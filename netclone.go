// Package netclone is a faithful software reproduction of "NetClone:
// Fast, Scalable, and Dynamic Request Cloning for Microsecond-Scale
// RPCs" (Gyuyeong Kim, ACM SIGCOMM 2023).
//
// NetClone reduces RPC tail latency by cloning requests in the
// Top-of-Rack switch: a request is replicated to a second server only
// when both candidate servers are tracked as idle, and the slower of the
// two responses is filtered in the switch data plane using request-ID
// fingerprints. This package is the public facade over the internal
// implementation:
//
//   - the PISA-constrained switch data plane (the paper's contribution),
//   - a deterministic discrete-event cluster simulation reproducing the
//     paper's testbed and every figure of its evaluation,
//   - a real-UDP emulation of the switch, servers, and clients,
//   - workload generators (synthetic service-time distributions and
//     Zipf-skewed key-value mixes).
//
// # Quick start
//
// Run one experiment point — NetClone on the paper's default Exp(25)
// workload at 1 MRPS over six 16-thread servers:
//
//	res, err := netclone.Run(netclone.Config{
//		Scheme:     netclone.NetClone,
//		Workers:    []int{16, 16, 16, 16, 16, 16},
//		Service:    netclone.WithJitter(netclone.Exp(25), 0.01),
//		OfferedRPS: 1e6,
//		WarmupNS:   50e6,
//		DurationNS: 200e6,
//		Seed:       1,
//	})
//	fmt.Println(res.Latency) // p50/p99/... in nanoseconds
//
// Reproduce a full paper figure:
//
//	report, err := netclone.RunExperiment("fig7a", netclone.DefaultOptions())
//	netclone.RenderText(os.Stdout, report)
//
// Every experiment describes its grid of simulation points declaratively
// and hands it to a bounded worker pool, so independent points run
// concurrently. Options.Parallelism bounds the pool (0 = one worker per
// CPU); reports are byte-identical at every parallelism level:
//
//	opts := netclone.DefaultOptions()
//	opts.Parallelism = 8 // or leave 0 for GOMAXPROCS
//	report, err := netclone.RunExperiment("fig7a", opts)
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured comparison of every table
// and figure.
package netclone

import (
	"fmt"
	"io"

	"netclone/internal/harness"
	"netclone/internal/kvstore"
	"netclone/internal/runner"
	"netclone/internal/simcluster"
	"netclone/internal/workload"
)

// Schemes compared in the paper's evaluation (§5.1.3).
const (
	// Baseline forwards each request to a uniformly random worker.
	Baseline = simcluster.Baseline
	// CClone is traditional client-based static cloning.
	CClone = simcluster.CClone
	// LAEDGE is coordinator-based dynamic cloning (NSDI'21).
	LAEDGE = simcluster.LAEDGE
	// NetClone is in-switch dynamic cloning with response filtering.
	NetClone = simcluster.NetClone
	// NetCloneRackSched integrates NetClone with the RackSched JSQ
	// scheduler (§3.7).
	NetCloneRackSched = simcluster.NetCloneRackSched
	// NetCloneNoFilter disables response filtering (Fig 15 ablation).
	NetCloneNoFilter = simcluster.NetCloneNoFilter
)

// Scheme selects the request-dispatching scheme of a simulated run.
type Scheme = simcluster.Scheme

// Config describes one simulated experiment point; see the field docs in
// the simcluster package.
type Config = simcluster.Config

// Calibration holds the simulated testbed's latency constants.
type Calibration = simcluster.Calibration

// Result is the outcome of one simulated run.
type Result = simcluster.Result

// Run executes one simulated experiment point.
func Run(cfg Config) (Result, error) { return simcluster.Run(cfg) }

// RunParallel executes many independent simulation points concurrently,
// at most parallelism at a time (0 = one worker per CPU), and returns
// the results in input order. Every run is seed-deterministic and
// isolated, so the output is identical to calling Run in a loop; only
// the wall time changes. All points run even when some fail, and the
// returned error aggregates one entry per failed point.
func RunParallel(cfgs []Config, parallelism int) ([]Result, error) {
	return runner.Run(cfgs, runner.Options{Parallelism: parallelism})
}

// DefaultCalibration returns the calibration constants documented in
// DESIGN.md §5.
func DefaultCalibration() Calibration { return simcluster.DefaultCalibration() }

// Dist is a service-time distribution.
type Dist = workload.Dist

// Exp returns an exponential service-time distribution with the given
// mean in microseconds (the paper's Exp(25) / Exp(50) workloads).
func Exp(meanUS float64) Dist { return workload.Exp(meanUS) }

// Bimodal9010 returns the paper's 90%/10% bimodal distribution with means
// in microseconds.
func Bimodal9010(shortUS, longUS float64) Dist { return workload.Bimodal9010(shortUS, longUS) }

// WithJitter wraps a distribution with the paper's x15 jitter at
// probability p (p=0.01 high variability, p=0.001 low).
func WithJitter(base Dist, p float64) Dist { return workload.WithJitter(base, p) }

// KVMix draws GET/SCAN/SET operations with Zipf-skewed keys (§5.5).
type KVMix = workload.KVMix

// NewKVMix builds an operation mix over n keys with Zipf skew s.
func NewKVMix(pGet, pScan float64, n uint64, s float64) *KVMix {
	return workload.NewKVMix(pGet, pScan, n, s)
}

// CostModel supplies per-operation service times for key-value servers.
type CostModel = kvstore.CostModel

// RedisModel returns the Redis-calibrated cost model (Fig 11).
func RedisModel() CostModel { return kvstore.Redis() }

// MemcachedModel returns the Memcached-calibrated cost model (Fig 12).
func MemcachedModel() CostModel { return kvstore.Memcached() }

// Options scale experiment fidelity for RunExperiment and bound its
// parallelism (Options.Parallelism; 0 = one worker per CPU).
type Options = harness.Options

// NoWarmup is the explicit Options.WarmupNS sentinel for "measure from
// time zero"; a zero WarmupNS means the default 50 ms warmup.
const NoWarmup = harness.NoWarmup

// Report is a rendered-ready experiment result.
type Report = harness.Report

// ReportSeries is one labelled curve of a figure report.
type ReportSeries = harness.Series

// ReportPoint is one datum of a report series.
type ReportPoint = harness.Point

// Experiment is one reproducible table or figure of the paper.
type Experiment = harness.Experiment

// DefaultOptions returns full-fidelity experiment options.
func DefaultOptions() Options { return harness.Default() }

// QuickOptions returns reduced-fidelity options for fast iteration.
func QuickOptions() Options { return harness.Quick() }

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []*Experiment { return harness.All() }

// ExperimentIDs returns the sorted experiment identifiers (fig7a...,
// table1, table2, abl-...).
func ExperimentIDs() []string { return harness.IDs() }

// RunExperiment reproduces one paper table or figure by ID.
func RunExperiment(id string, opts Options) (Report, error) {
	e, ok := harness.Lookup(id)
	if !ok {
		return Report{}, fmt.Errorf("netclone: unknown experiment %q (see ExperimentIDs)", id)
	}
	return e.Run(opts)
}

// RenderText writes a human-readable rendering of a report.
func RenderText(w io.Writer, r Report) error { return harness.RenderText(w, r) }

// RenderCSV writes a report as CSV.
func RenderCSV(w io.Writer, r Report) error { return harness.RenderCSV(w, r) }
